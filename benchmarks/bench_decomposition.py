"""Experiments E1-E3: parallel low-diameter decomposition (Theorem 4.1).

* E1 — strong radius is at most rho and every center lies in its component.
* E2 — the fraction of cut edges decays like ~1/rho (per edge class).
* E3 — work is near-linear in m and depth scales with rho (not with n).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from benchmarks.conftest import print_table
from repro.core.decomposition import (
    cut_edge_mask,
    cut_fraction_per_class,
    decomposition_radii,
    partition,
    split_graph,
)
from repro.graph import generators
from repro.pram.model import CostModel
from repro.util.records import ExperimentRow

RHOS = [4, 8, 16, 32]


def _decompose(graph, rho, seed=0):
    return split_graph(
        graph, rho=rho, seed=seed, jitter_range=max(1, rho // 2), sample_coefficient=1.0
    )


class TestE1Radius:
    """E1: strong-diameter guarantee (Theorem 4.1 (1)-(2))."""

    @pytest.mark.parametrize("rho", RHOS)
    def test_radius_bound(self, benchmark, bench_grid, rho):
        decomp = benchmark(lambda: _decompose(bench_grid, rho))
        radii = decomposition_radii(bench_grid, decomp)
        rows = [
            ExperimentRow(
                "E1",
                f"grid48 rho={rho}",
                params={"rho": rho},
                measured={
                    "components": decomp.num_components,
                    "max_strong_radius": int(radii.max()),
                    "bound": rho,
                },
            )
        ]
        print_table("E1: strong radius <= rho (Theorem 4.1(2))", rows)
        assert radii.max() <= rho
        for idx, center in enumerate(decomp.centers):
            assert decomp.labels[center] == idx


class TestE2CutFraction:
    """E2: cut-edge fraction decays with rho (Theorem 4.1 (3))."""

    def test_cut_fraction_sweep(self, benchmark, bench_grid, bench_regular_graph):
        def sweep():
            rows = []
            for name, graph in [("grid48", bench_grid), ("regular1500", bench_regular_graph)]:
                for rho in RHOS:
                    decomp = _decompose(graph, rho, seed=1)
                    frac = float(cut_edge_mask(graph, decomp.labels).mean())
                    bound = 272.0 * math.log2(graph.n) ** 3 / rho
                    rows.append(
                        ExperimentRow(
                            "E2",
                            f"{name}",
                            params={"rho": rho},
                            measured={"cut_fraction": frac, "paper_bound": min(bound, 1.0)},
                        )
                    )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table("E2: cut fraction vs rho (Theorem 4.1(3))", rows)
        grid_rows = [r for r in rows if r.workload == "grid48"]
        assert grid_rows[-1].measured["cut_fraction"] < grid_rows[0].measured["cut_fraction"]
        assert all(r.measured["cut_fraction"] <= r.measured["paper_bound"] + 1e-9 for r in rows)

    def test_multi_class_bound(self, benchmark, bench_weighted_grid):
        g = bench_weighted_grid
        classes = g.weight_buckets(8.0)
        rho = 16

        def run():
            return partition(
                g, rho=rho, edge_classes=classes, seed=2, c1=1.0,
                jitter_range=rho // 2, sample_coefficient=1.0,
            )

        decomp = benchmark.pedantic(run, rounds=1, iterations=1)
        fractions = cut_fraction_per_class(g, decomp.labels, classes)
        rows = [
            ExperimentRow(
                "E2",
                f"wgrid40 class {cls}",
                params={"rho": rho},
                measured={"cut_fraction": frac, "bound": decomp.stats["cut_bound"]},
            )
            for cls, frac in sorted(fractions.items())
        ]
        print_table("E2: per-class cut fractions (Algorithm 4.2 validation)", rows)
        assert max(fractions.values()) <= decomp.stats["cut_bound"]


class TestE3WorkDepth:
    """E3: near-linear work, depth governed by rho (Theorem 4.1 cost bounds)."""

    def test_work_depth_scaling(self, benchmark):
        sizes = [16, 32, 64]

        def sweep():
            rows = []
            for size in sizes:
                g = generators.grid_2d(size, size)
                cost = CostModel()
                split_graph(g, rho=8, seed=0, cost=cost, jitter_range=4, sample_coefficient=1.0)
                rows.append(
                    ExperimentRow(
                        "E3",
                        f"grid{size}",
                        params={"m": g.num_edges},
                        measured={
                            "work": cost.work,
                            "work_per_edge": cost.work / g.num_edges,
                            "depth": cost.depth,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table("E3: decomposition work/depth scaling", rows)
        # near-linear work: work/edge stays within a small factor across sizes
        ratios = [r.measured["work_per_edge"] for r in rows]
        assert max(ratios) <= 12 * min(ratios)
        # depth grows much slower than work
        assert rows[-1].measured["depth"] < rows[-1].measured["work"] / 10

    def test_depth_within_rho_polylog_bound(self, benchmark, bench_grid):
        logn = math.ceil(math.log2(bench_grid.n))

        def sweep():
            rows = []
            for rho in (4, 32):
                cost = CostModel()
                split_graph(bench_grid, rho=rho, seed=0, cost=cost,
                            jitter_range=max(1, rho // 2), sample_coefficient=1.0)
                rows.append(
                    ExperimentRow(
                        "E3", f"grid48 rho={rho}", params={"rho": rho},
                        measured={
                            "depth": cost.depth,
                            "rounds": cost.rounds,
                            "bound_10_rho_log2": 10.0 * rho * logn**2,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print_table("E3: depth vs rho (bound O(rho log^2 n))", rows)
        for r in rows:
            assert r.measured["depth"] <= r.measured["bound_10_rho_log2"]
