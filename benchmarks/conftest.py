"""Shared fixtures and helpers for the benchmark harness.

Every benchmark prints the table it regenerates (experiment rows comparing
the paper's guarantee with the measured quantity) in addition to the
pytest-benchmark wall-clock statistics.  Sizes are chosen so the whole suite
runs in a few minutes on a laptop; pass ``--benchmark-only`` to skip the unit
tests and run just these.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators


@pytest.fixture(scope="session")
def bench_grid():
    """Primary benchmark workload: a 48x48 grid (n=2304, m=4512)."""
    return generators.grid_2d(48, 48)


@pytest.fixture(scope="session")
def bench_weighted_grid():
    return generators.weighted_grid_2d(40, 40, seed=7, spread=1e4)


@pytest.fixture(scope="session")
def bench_random_graph():
    return generators.erdos_renyi_gnm(2000, 8000, seed=11)


@pytest.fixture(scope="session")
def bench_regular_graph():
    return generators.random_regular_graph(1500, 6, seed=13)


def print_table(title: str, rows) -> None:
    """Print an experiment table through the records formatter."""
    from repro.util.records import format_table

    print(f"\n=== {title} ===")
    print(format_table(rows))
