"""Experiment E6: parallel greedy elimination (Lemma 6.5).

Measures (a) the vertex-count bound — the reduced graph has O(extra edges)
vertices — and (b) the number of rake/compress rounds, which the lemma bounds
by O(log n).
"""

from __future__ import annotations

import math

import numpy as np

from benchmarks.conftest import print_table
from repro.core.elimination import greedy_elimination
from repro.graph import generators
from repro.graph.graph import Graph
from repro.util.records import ExperimentRow


def _tree_plus_extras(n: int, extra: int, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    u = [int(perm[rng.integers(0, i)]) for i in range(1, n)]
    v = [int(perm[i]) for i in range(1, n)]
    eu, ev = [], []
    while len(eu) < extra:
        a, b = rng.integers(0, n, 2)
        if a != b:
            eu.append(int(a))
            ev.append(int(b))
    return Graph(n, u + eu, v + ev)


class TestE6GreedyElimination:
    def test_vertex_bound(self, benchmark):
        def run():
            rows = []
            for n, extra in [(1000, 20), (1000, 80), (4000, 100)]:
                g = _tree_plus_extras(n, extra, seed=extra)
                elim = greedy_elimination(g, seed=0)
                rows.append(
                    ExperimentRow(
                        "E6",
                        f"tree n={n} +{extra} edges",
                        params={"n": n, "extra_edges": extra},
                        measured={
                            "kept_vertices": elim.reduced_graph.n,
                            "paper_bound_2m": 2 * extra,
                            "rounds": elim.rounds,
                            "log_n": math.ceil(math.log2(n)),
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E6: GreedyElimination vertex bound (Lemma 6.5)", rows)
        for r in rows:
            assert r.measured["kept_vertices"] <= max(r.measured["paper_bound_2m"], 4)
            assert r.measured["rounds"] <= 8 * r.measured["log_n"]

    def test_rounds_scaling(self, benchmark):
        """Rounds grow like log n on long paths (worst case for rake/compress)."""

        def run():
            rows = []
            for n in (256, 1024, 4096):
                g = generators.path_graph(n)
                elim = greedy_elimination(g, seed=1)
                rows.append(
                    ExperimentRow(
                        "E6",
                        f"path{n}",
                        params={"n": n},
                        measured={"rounds": elim.rounds, "log_n": math.ceil(math.log2(n))},
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E6: elimination rounds vs n", rows)
        for r in rows:
            assert r.measured["rounds"] <= 10 * r.measured["log_n"]
