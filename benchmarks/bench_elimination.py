"""Experiment E6: parallel greedy elimination (Lemma 6.5).

Measures (a) the vertex-count bound — the reduced graph has O(extra edges)
vertices — and (b) the number of rake/compress rounds, which the lemma bounds
by O(log n), and (c) the throughput of the *compiled* solve transfers
(:mod:`repro.core.transfer`) against the historical per-step op-list replay.

Machine-readable output
-----------------------
Run this module as a script to emit ``BENCH_elimination.json``::

    PYTHONPATH=src python benchmarks/bench_elimination.py --json
    PYTHONPATH=src python benchmarks/bench_elimination.py --json --n 2000 --extra 40

The JSON payload records the elimination build time, the compile time, the
per-transfer-pair cost of the compiled operators vs the op-list replay
(µs/op and speedup), and the batched-vs-looped multi-RHS comparison —
tracking the solve-hot-path perf trajectory like ``BENCH_solver.json``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List, Tuple

import numpy as np

try:
    from benchmarks.conftest import print_table
except ImportError:  # executed as a script: benchmarks/ itself is on sys.path
    from conftest import print_table

from repro.core.elimination import EliminationResult, greedy_elimination
from repro.core.transfer import compile_transfers
from repro.graph import generators
from repro.graph.graph import Graph
from repro.util.records import ExperimentRow


def _tree_plus_extras(n: int, extra: int, seed: int, weighted: bool = False) -> Graph:
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n)
    u = [int(perm[rng.integers(0, i)]) for i in range(1, n)]
    v = [int(perm[i]) for i in range(1, n)]
    eu, ev = [], []
    while len(eu) < extra:
        a, b = rng.integers(0, n, 2)
        if a != b:
            eu.append(int(a))
            ev.append(int(b))
    w = rng.uniform(0.1, 10.0, n - 1 + extra) if weighted else None
    return Graph(n, u + eu, v + ev, w)


# --------------------------------------------------------------------------- #
# op-list replay baseline (the pre-compiled interpreted transfer)
# --------------------------------------------------------------------------- #
def legacy_forward_rhs(elim: EliminationResult, b: np.ndarray) -> np.ndarray:
    """Replay the elimination op list one step at a time (historical path)."""
    b_full = np.asarray(b, dtype=float).copy()
    for op in elim.operations:
        if op[0] == "d1":
            _, v, u, _w = op
            b_full[u] += b_full[v]
        else:
            _, v, u1, w1, u2, w2 = op
            total = w1 + w2
            b_full[u1] += (w1 / total) * b_full[v]
            b_full[u2] += (w2 / total) * b_full[v]
    return b_full[elim.kept_vertices]


def legacy_backward_solution(
    elim: EliminationResult, b: np.ndarray, x_reduced: np.ndarray
) -> np.ndarray:
    """Replay forward + reversed back substitution (historical path)."""
    b_full = np.asarray(b, dtype=float).copy()
    for op in elim.operations:
        if op[0] == "d1":
            _, v, u, _w = op
            b_full[u] += b_full[v]
        else:
            _, v, u1, w1, u2, w2 = op
            total = w1 + w2
            b_full[u1] += (w1 / total) * b_full[v]
            b_full[u2] += (w2 / total) * b_full[v]
    x = np.zeros_like(b_full)
    x[elim.kept_vertices] = np.asarray(x_reduced, dtype=float)
    for op in reversed(elim.operations):
        if op[0] == "d1":
            _, v, u, w = op
            x[v] = x[u] + b_full[v] / w
        else:
            _, v, u1, w1, u2, w2 = op
            total = w1 + w2
            x[v] = (w1 * x[u1] + w2 * x[u2] + b_full[v]) / total
    return x


def _time(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class TestE6GreedyElimination:
    def test_vertex_bound(self, benchmark):
        def run():
            rows = []
            for n, extra in [(1000, 20), (1000, 80), (4000, 100)]:
                g = _tree_plus_extras(n, extra, seed=extra)
                elim = greedy_elimination(g, seed=0)
                rows.append(
                    ExperimentRow(
                        "E6",
                        f"tree n={n} +{extra} edges",
                        params={"n": n, "extra_edges": extra},
                        measured={
                            "kept_vertices": elim.reduced_graph.n,
                            "paper_bound_2m": 2 * extra,
                            "rounds": elim.rounds,
                            "log_n": math.ceil(math.log2(n)),
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E6: GreedyElimination vertex bound (Lemma 6.5)", rows)
        for r in rows:
            assert r.measured["kept_vertices"] <= max(r.measured["paper_bound_2m"], 4)
            assert r.measured["rounds"] <= 8 * r.measured["log_n"]

    def test_rounds_scaling(self, benchmark):
        """Rounds grow like log n on long paths (worst case for rake/compress)."""

        def run():
            rows = []
            for n in (256, 1024, 4096):
                g = generators.path_graph(n)
                elim = greedy_elimination(g, seed=1)
                rows.append(
                    ExperimentRow(
                        "E6",
                        f"path{n}",
                        params={"n": n},
                        measured={"rounds": elim.rounds, "log_n": math.ceil(math.log2(n))},
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E6: elimination rounds vs n", rows)
        for r in rows:
            assert r.measured["rounds"] <= 10 * r.measured["log_n"]

    def test_compiled_transfer_throughput(self, benchmark):
        """Compiled transfers beat the op-list replay and match it bitwise."""

        def run():
            g = _tree_plus_extras(4000, 60, seed=1, weighted=True)
            elim = greedy_elimination(g, seed=0)
            transfers = compile_transfers(elim)
            rng = np.random.default_rng(7)
            b = rng.standard_normal(g.n)
            x_red = rng.standard_normal(elim.reduced_graph.n)

            def legacy_pair():
                legacy_forward_rhs(elim, b)
                legacy_backward_solution(elim, b, x_red)

            def compiled_pair():
                b_red, carry = transfers.forward(b)
                transfers.backward(carry, x_red)

            t_legacy = _time(legacy_pair, 3)
            t_compiled = _time(compiled_pair, 10)
            assert np.array_equal(legacy_forward_rhs(elim, b), transfers.forward_rhs(b))
            assert np.array_equal(
                legacy_backward_solution(elim, b, x_red),
                transfers.backward_solution(b, x_red),
            )
            return [
                ExperimentRow(
                    "E6",
                    "tree4000+60",
                    params={"n": g.n, "eliminated": elim.num_eliminated},
                    measured={
                        "legacy_ms": t_legacy * 1e3,
                        "compiled_ms": t_compiled * 1e3,
                        "speedup": t_legacy / t_compiled,
                    },
                )
            ]

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E6: compiled transfer vs op-list replay", rows)
        assert rows[0].measured["speedup"] > 2.0


# --------------------------------------------------------------------------- #
# standalone --json harness
# --------------------------------------------------------------------------- #
def collect_payload(
    n: int = 20000,
    extra: int = 200,
    batch_width: int = 8,
    seed: int = 0,
    repeats: int = 5,
) -> Dict:
    """Benchmark build / compile / transfer throughput on a tree-like graph."""
    g = _tree_plus_extras(n, extra, seed=seed, weighted=True)

    t0 = time.perf_counter()
    elim = greedy_elimination(g, seed=seed)
    build_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    transfers = compile_transfers(elim)
    compile_seconds = time.perf_counter() - t0

    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal(g.n)
    x_red = rng.standard_normal(elim.reduced_graph.n)
    batch = rng.standard_normal((g.n, batch_width))
    x_red_batch = rng.standard_normal((elim.reduced_graph.n, batch_width))

    # Correctness first: the compiled operators must match the replay
    # bit-for-bit, else the timings below compare different algorithms.
    assert np.array_equal(legacy_forward_rhs(elim, b), transfers.forward_rhs(b))
    assert np.array_equal(
        legacy_backward_solution(elim, b, x_red),
        transfers.backward_solution(b, x_red),
    )

    t_legacy = _time(
        lambda: (legacy_forward_rhs(elim, b), legacy_backward_solution(elim, b, x_red)),
        max(2, repeats // 2),
    )

    def compiled_pair():
        _, carry = transfers.forward(b)
        transfers.backward(carry, x_red)

    t_compiled = _time(compiled_pair, repeats * 4)

    def compiled_batched():
        _, carry = transfers.forward(batch)
        transfers.backward(carry, x_red_batch)

    t_batched = _time(compiled_batched, repeats * 4)

    def compiled_looped():
        for j in range(batch_width):
            _, carry = transfers.forward(batch[:, j])
            transfers.backward(carry, x_red_batch[:, j])

    t_looped = _time(compiled_looped, max(2, repeats // 2))

    e = max(elim.num_eliminated, 1)
    return {
        "experiment": "E6",
        "schema_version": 1,
        "workload": {
            "kind": "tree_plus_extras",
            "n": n,
            "extra_edges": extra,
            "m": g.num_edges,
            "seed": seed,
        },
        "elimination": {
            "eliminated": elim.num_eliminated,
            "kept": int(elim.kept_vertices.shape[0]),
            "rounds": elim.rounds,
            "subrounds": elim.schedule.num_subrounds,
            "build_seconds": build_seconds,
            "compile_seconds": compile_seconds,
        },
        "transfer": {
            "legacy_pair_seconds": t_legacy,
            "compiled_pair_seconds": t_compiled,
            "speedup": t_legacy / t_compiled,
            "legacy_us_per_op": t_legacy / e * 1e6,
            "compiled_us_per_op": t_compiled / e * 1e6,
        },
        "multi_rhs": {
            "k": batch_width,
            "batched_pair_seconds": t_batched,
            "looped_pair_seconds": t_looped,
            "batched_speedup": t_looped / t_batched,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--json", action="store_true", help="write the machine-readable payload"
    )
    parser.add_argument(
        "--out",
        default="BENCH_elimination.json",
        help="output path for --json (default: BENCH_elimination.json)",
    )
    parser.add_argument("--n", type=int, default=20000, help="vertex count")
    parser.add_argument("--extra", type=int, default=200, help="off-tree edges")
    parser.add_argument("--batch", type=int, default=8, help="multi-RHS batch width")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats")
    args = parser.parse_args(argv)

    payload = collect_payload(
        n=args.n,
        extra=args.extra,
        batch_width=args.batch,
        seed=args.seed,
        repeats=args.repeats,
    )
    t = payload["transfer"]
    e = payload["elimination"]
    print(
        f"n={args.n} +{args.extra}: build {e['build_seconds']*1e3:.1f} ms, "
        f"compile {e['compile_seconds']*1e3:.1f} ms, "
        f"transfer pair {t['legacy_pair_seconds']*1e3:.2f} ms (replay) -> "
        f"{t['compiled_pair_seconds']*1e3:.3f} ms (compiled), "
        f"{t['speedup']:.1f}x; batched k={payload['multi_rhs']['k']} "
        f"{payload['multi_rhs']['batched_speedup']:.1f}x vs looped"
    )
    if args.json:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
