"""Experiment E13: incremental re-factorization (``LaplacianOperator.update``).

The update path exists to beat one number: the cost of throwing the chain
away and calling ``factorize()`` again after a batch of edge edits.  This
benchmark measures both sides of that trade on the ISSUE-9 acceptance
workload — a ~100k-vertex grid — across edit-batch sizes from 0.1% to 5%
of the edge set, and (with ``--rmat``) on a power-law R-MAT multigraph
factorized through the deeper ``max_levels=16`` chain such cores need.

Each trial starts from the same pristine factorized operator (``update``
never mutates its receiver, so one baseline serves every fraction), applies
a mixed batch — reweights, deletes, and inserts in an 8:1:1 split of the
edit budget — and times

* ``update_seconds``  — ``op.update(edits)`` (the patch: top level rebuilt
  exactly, the stale sparsifier/elimination/bottom-LU kept as
  preconditioner), and
* ``rebuild_seconds`` — ``factorize(mutated_graph)`` from scratch.

Verification solves run with a raised ``max_iterations`` budget (2000 vs
the default 200): the stale-preconditioner contract is that staleness
costs *iterations*, never accuracy, and at the 5% edit fraction the
patched chain legitimately needs ~2-3x the iterations of a fresh one to
reach tol=1e-10 — the benchmark asserts the patched solve **converges**
and records both iteration counts, so the per-solve cost of staleness is
part of the payload, not hidden by the setup-time speedup.

Every trial also *verifies* the equivalence contract inline: the updated
operator's solve must agree with the fresh factorization's solve to a
**relative** ``--equiv-tol`` (default 1e-8, measured as
``max|dx| / max(1, max|x_ref|)``) at tol=1e-10, and the benchmark raises
on violation — a speedup from a wrong answer is not a speedup.  The
relative form is the scale-appropriate reading of the corpus-level
absolute ≤1e-8 bar pinned in ``tests/test_update.py``: on a 100k-vertex
grid both solves independently meet the 1e-10 residual tolerance, but the
grid Laplacian's conditioning amplifies the *absolute* solution gap by
orders of magnitude (both payload fields are recorded).

Machine-readable output
-----------------------
Run this module as a script to emit ``BENCH_update.json``::

    PYTHONPATH=src python benchmarks/bench_update.py --json
    PYTHONPATH=src python benchmarks/bench_update.py --json --side 40 \\
        --fractions 0.01 0.05 --out bench_update_ci.json
    PYTHONPATH=src python benchmarks/bench_update.py --json --rmat \\
        --assert-min-speedup 5.0

``--assert-min-speedup X`` turns the payload into a regression gate: every
trial whose edit fraction is <= ``--gate-max-fraction`` (default 0.01, the
ISSUE-9 acceptance bar) must patch at least ``X`` times faster than the
full rebuild.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.core.chain_cache import clear_chain_cache
from repro.core.config import ChainConfig
from repro.core.operator import factorize
from repro.graph import generators
from repro.graph.edits import EdgeEdits

DEFAULT_FRACTIONS = (0.001, 0.01, 0.05)

#: Power-law cores need more sparsify/eliminate rounds before the bottom
#: LU is tractable (see bench_chain_build.py); four levels hang splu.
RMAT_CHAIN = ChainConfig(max_levels=16)


def _mixed_batch(graph, fraction: float, rng: np.random.Generator) -> EdgeEdits:
    """Reweights, deletes, and inserts in an 8:1:1 split of the edit budget."""
    m = graph.num_edges
    budget = max(1, int(round(fraction * m)))
    n_rew = max(1, (8 * budget) // 10)
    n_del = budget // 10
    n_ins = budget - n_rew - n_del
    perm = rng.permutation(m)
    batches = [
        EdgeEdits.reweights(
            np.sort(perm[:n_rew]), rng.uniform(0.5, 4.0, size=n_rew)
        )
    ]
    if n_del:
        batches.append(EdgeEdits.deletes(np.sort(perm[n_rew : n_rew + n_del])))
    if n_ins:
        u = rng.integers(0, graph.n, size=4 * n_ins)
        v = rng.integers(0, graph.n, size=4 * n_ins)
        keep = np.flatnonzero(u != v)[:n_ins]
        if keep.size:
            batches.append(
                EdgeEdits.inserts(u[keep], v[keep], rng.uniform(0.5, 4.0, size=keep.size))
            )
    return EdgeEdits.merge(*batches)


def measure_workload(
    name: str,
    graph,
    *,
    fractions,
    chain_config: Optional[ChainConfig] = None,
    seed: int = 0,
    equiv_tol: float = 1e-8,
    solve_tol: float = 1e-10,
) -> Dict:
    """Time update-vs-rebuild for every edit fraction on one workload."""
    clear_chain_cache()
    gc.collect()
    t0 = time.perf_counter()
    baseline = factorize(graph, chain_config, seed=seed)
    baseline_seconds = time.perf_counter() - t0
    rng = np.random.default_rng(seed + 1)
    b = rng.standard_normal(graph.n)

    trials: List[Dict] = []
    for fraction in fractions:
        edits = _mixed_batch(graph, fraction, rng)
        mutated = graph.apply_edits(edits)

        gc.collect()
        t0 = time.perf_counter()
        updated, report = baseline.update(edits)
        update_seconds = time.perf_counter() - t0

        gc.collect()
        t0 = time.perf_counter()
        fresh = factorize(mutated, chain_config, seed=seed)
        rebuild_seconds = time.perf_counter() - t0

        upd = updated.solve(b, tol=solve_tol, max_iterations=2000)
        ref = fresh.solve(b, tol=solve_tol, max_iterations=2000)
        if not upd.converged:
            raise AssertionError(
                f"{name} fraction={fraction}: patched operator failed to reach "
                f"tol={solve_tol} in {upd.iterations} iterations "
                f"(residual {upd.relative_residual:.3e}) — staleness may cost "
                "iterations, never accuracy"
            )
        max_abs_diff = float(np.max(np.abs(upd.x - ref.x))) if graph.n else 0.0
        scale = float(max(1.0, np.max(np.abs(ref.x)))) if graph.n else 1.0
        rel_diff = max_abs_diff / scale
        if rel_diff > equiv_tol:
            raise AssertionError(
                f"{name} fraction={fraction}: updated operator diverged from "
                f"fresh factorize (relative {rel_diff:.3e} > {equiv_tol:.1e}, "
                f"absolute {max_abs_diff:.3e})"
            )

        trials.append(
            {
                "edit_fraction": float(fraction),
                "num_edits": report.num_edits,
                "strategy": report.strategy,
                "batch_damage": report.batch_damage,
                "update_seconds": update_seconds,
                "rebuild_seconds": rebuild_seconds,
                "speedup": rebuild_seconds / update_seconds if update_seconds else 0.0,
                "update_solve_iterations": upd.iterations,
                "update_solve_converged": bool(upd.converged),
                "rebuild_solve_iterations": ref.iterations,
                "max_abs_diff": max_abs_diff,
                "max_rel_diff": rel_diff,
                "equivalence_ok": True,
            }
        )
        del updated, fresh, mutated
    return {
        "workload": name,
        "n": graph.n,
        "m": graph.num_edges,
        "chain_levels": baseline.chain.depth,
        "max_levels": (chain_config or ChainConfig()).max_levels,
        "update_rebuild_fraction": baseline.chain_config.update_rebuild_fraction,
        "baseline_factorize_seconds": baseline_seconds,
        "trials": trials,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--json", action="store_true", help="emit a JSON payload")
    parser.add_argument(
        "--out", default="BENCH_update.json", help="output path for --json"
    )
    parser.add_argument(
        "--side",
        type=int,
        default=317,
        help="grid side length (default 317 => ~100k vertices, the ISSUE-9 "
        "acceptance workload)",
    )
    parser.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=list(DEFAULT_FRACTIONS),
        help="edit-batch sizes as fractions of the edge count",
    )
    parser.add_argument(
        "--rmat",
        action="store_true",
        help="also run a scale-14 R-MAT multigraph (max_levels=16 chain)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--equiv-tol",
        type=float,
        default=1e-8,
        help="max allowed relative |x_update - x_rebuild| / max(1, |x_rebuild|) "
        "at tol=1e-10 (raises beyond)",
    )
    parser.add_argument(
        "--assert-min-speedup",
        type=float,
        default=None,
        help="fail unless every trial at <= --gate-max-fraction patches at "
        "least this many times faster than the full rebuild",
    )
    parser.add_argument(
        "--gate-max-fraction",
        type=float,
        default=0.01,
        help="edit fractions covered by --assert-min-speedup (default 0.01)",
    )
    args = parser.parse_args(argv)

    workloads = [
        (
            f"grid{args.side}",
            generators.grid_2d(args.side, args.side),
            None,
        )
    ]
    if args.rmat:
        workloads.append(
            ("rmat14", generators.rmat_graph(14, edge_factor=8, seed=5), RMAT_CHAIN)
        )

    results = []
    for name, graph, cfg in workloads:
        print(f"[bench_update] {name}: n={graph.n} m={graph.num_edges}", flush=True)
        result = measure_workload(
            name,
            graph,
            fractions=args.fractions,
            chain_config=cfg,
            seed=args.seed,
            equiv_tol=args.equiv_tol,
        )
        for t in result["trials"]:
            print(
                "  fraction={edit_fraction:<6g} {strategy:<8s} "
                "update={update_seconds:.4f}s rebuild={rebuild_seconds:.4f}s "
                "speedup={speedup:.1f}x rel_diff={max_rel_diff:.2e}".format(**t),
                flush=True,
            )
        results.append(result)
        del graph
        gc.collect()

    payload = {
        "benchmark": "update",
        "schema_version": 1,
        "seed": args.seed,
        "equiv_tol": args.equiv_tol,
        "solve_tol": 1e-10,
        "workloads": results,
    }

    if args.assert_min_speedup is not None:
        slow = [
            (r["workload"], t["edit_fraction"], t["speedup"])
            for r in results
            for t in r["trials"]
            if t["edit_fraction"] <= args.gate_max_fraction
            and t["speedup"] < args.assert_min_speedup
        ]
        if slow:
            print(
                f"FAIL: trials under the {args.assert_min_speedup}x gate: {slow}",
                file=sys.stderr,
            )
            return 1
        print(
            f"gate ok: all trials at fraction <= {args.gate_max_fraction} beat "
            f"{args.assert_min_speedup}x",
            flush=True,
        )

    if args.json:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
