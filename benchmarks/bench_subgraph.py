"""Experiment E5: low-stretch ultra-sparse subgraphs (Theorem 5.9).

Sweeps beta and lambda and reports the edge-count / average-stretch
trade-off that Lemma 5.5 / Theorem 5.9 bound:
``|E| <= n - 1 + m (c log^3 n / beta)^lambda`` and polylog average stretch.
"""

from __future__ import annotations

import math

from benchmarks.conftest import print_table
from repro.core.sparse_akpw import low_stretch_subgraph
from repro.core.stretch import average_stretch
from repro.pram.model import CostModel
from repro.util.records import ExperimentRow


class TestE5LowStretchSubgraphs:
    def test_beta_sweep(self, benchmark, bench_weighted_grid):
        g = bench_weighted_grid

        def run():
            rows = []
            for beta in (3.0, 6.0, 12.0):
                cost = CostModel()
                sub = low_stretch_subgraph(g, lam=2, beta=beta, seed=0, cost=cost)
                rows.append(
                    ExperimentRow(
                        "E5",
                        "wgrid40",
                        params={"beta": beta, "lam": 2},
                        measured={
                            "edges": sub.num_edges,
                            "extra_edges": sub.num_edges - (g.n - 1),
                            "avg_stretch": average_stretch(g, sub.edge_indices),
                            "depth": cost.depth,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E5: subgraph edges / stretch vs beta (Theorem 5.9)", rows)
        # more aggressive beta -> no more edges than gentler beta (tree limit)
        assert rows[-1].measured["edges"] <= rows[0].measured["edges"] + g.n // 20
        # polylog average stretch at every setting
        for r in rows:
            assert r.measured["avg_stretch"] <= 8.0 * math.log2(g.n) ** 2

    def test_lambda_sweep(self, benchmark, bench_weighted_grid):
        g = bench_weighted_grid

        def run():
            rows = []
            for lam in (1, 2, 3):
                sub = low_stretch_subgraph(g, lam=lam, beta=4.0, seed=1)
                rows.append(
                    ExperimentRow(
                        "E5",
                        "wgrid40",
                        params={"lam": lam, "beta": 4.0},
                        measured={
                            "edges": sub.num_edges,
                            "tree_edges": len(sub.tree_edges),
                            "extra_edges": len(sub.extra_edges),
                            "avg_stretch": average_stretch(g, sub.edge_indices),
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E5: subgraph composition vs lambda", rows)
        for r in rows:
            assert r.measured["tree_edges"] == g.n - 1

    def test_subgraph_vs_tree_stretch(self, benchmark, bench_grid):
        """The ultra-sparse subgraph should not be worse than the pure tree."""
        g = bench_grid

        def run():
            sub = low_stretch_subgraph(g, lam=2, beta=3.0, seed=2)
            return {
                "subgraph_stretch": average_stretch(g, sub.edge_indices),
                "tree_stretch": average_stretch(g, sub.tree_edges),
                "edges": sub.num_edges,
            }

        out = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [ExperimentRow("E5", "grid48", measured=out)]
        print_table("E5: subgraph vs its own tree part", rows)
        assert out["subgraph_stretch"] <= out["tree_stretch"] + 1e-9
