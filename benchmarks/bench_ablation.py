"""Experiment E11: ablations of the paper's design choices.

* Low-stretch *subgraph* vs low-stretch *tree* inside the sparsifier — the
  paper's key observation (Section 5.2 / 6.1) is that an ultra-sparse
  subgraph suffices and gives polylog stretch where trees cannot.
* Chain termination size — terminating at ~m^(1/3) (dense bottom solve)
  versus recursing further: depth drops sharply, work stays comparable.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table
from repro.core.config import ChainConfig
from repro.core.operator import factorize
from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.pram.model import CostModel
from repro.util.records import ExperimentRow


def _rhs(graph, seed=0):
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(graph.n)
    return b - b.mean()


class TestE11Ablations:
    def test_subgraph_vs_tree_preconditioner(self, benchmark, bench_grid):
        g = bench_grid
        b = _rhs(g)

        def run():
            rows = []
            for label, tree_only in [("subgraph (paper)", False), ("tree only", True)]:
                op = factorize(g, ChainConfig(use_tree_only=tree_only), seed=0)
                report = op.solve(b, tol=1e-8)
                rows.append(
                    ExperimentRow(
                        "E11",
                        label,
                        params={"m": g.num_edges},
                        measured={
                            "outer_iterations": report.iterations,
                            "levels": op.chain.depth,
                            "converged": report.converged,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E11: subgraph-based vs tree-based preconditioner chain", rows)
        sub_iters = rows[0].measured["outer_iterations"]
        tree_iters = rows[1].measured["outer_iterations"]
        assert rows[0].measured["converged"]
        # the subgraph chain should never need meaningfully more iterations
        assert sub_iters <= tree_iters * 1.25 + 5

    def test_chain_termination_size(self, benchmark):
        g = generators.grid_2d(32, 32)
        b = _rhs(g)

        def run():
            rows = []
            for label, bottom in [("m^(1/3) bottom", max(40, int(round(g.num_edges ** (1 / 3))))),
                                  ("large bottom (n/3)", g.n // 3)]:
                cost = CostModel()
                op = factorize(g, ChainConfig(bottom_size=bottom, kappa=49.0), seed=0, cost=cost)
                report = op.solve(b, tol=1e-8)
                rows.append(
                    ExperimentRow(
                        "E11",
                        label,
                        params={"bottom_size": bottom},
                        measured={
                            "levels": op.chain.depth,
                            "outer_iterations": report.iterations,
                            "work": cost.work,
                            "depth": cost.depth,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E11: chain termination size ablation", rows)
        assert all(r.measured["outer_iterations"] > 0 for r in rows)
