"""Experiment E7: incremental sparsification (Lemma 6.1 / 6.2).

Measures the spectral sandwich ``G ⪯ O(1)·H`` and ``H' ⪯ O(kappa)·G``
(equivalently: the generalized condition number of (G, H) stays O(kappa))
and the preconditioner size as kappa grows.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from benchmarks.conftest import print_table
from repro.core.sparse_akpw import low_stretch_subgraph
from repro.core.sparsify import incremental_sparsify
from repro.graph import generators
from repro.graph.laplacian import graph_to_laplacian
from repro.util.records import ExperimentRow


def _generalized_condition(graph, h_graph) -> float:
    n = graph.n
    lg = graph_to_laplacian(graph).toarray()
    lh = graph_to_laplacian(h_graph).toarray()
    shift = np.ones((n, n)) / n
    evals = np.sort(np.real(sla.eigvalsh(lg + shift, lh + shift)))
    return float(evals[-1] / evals[0])


class TestE7IncrementalSparsify:
    def test_kappa_sweep(self, benchmark):
        g = generators.grid_2d(22, 22)
        sub = low_stretch_subgraph(g.reweighted(1.0 / g.w), lam=2, beta=6.0, seed=0)

        def run():
            rows = []
            for kappa in (6.0, 12.0, 24.0, 48.0):
                res = incremental_sparsify(g, sub.edge_indices, kappa, seed=1, use_log_factor=False)
                cond = _generalized_condition(g, res.graph)
                rows.append(
                    ExperimentRow(
                        "E7",
                        "grid22",
                        params={"kappa": kappa},
                        measured={
                            "precond_edges": res.num_edges,
                            "graph_edges": g.num_edges,
                            "generalized_condition": cond,
                            "bound_6kappa": 6.0 * kappa,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E7: sparsifier size and condition number vs kappa (Lemma 6.1)", rows)
        for r in rows:
            assert r.measured["generalized_condition"] <= r.measured["bound_6kappa"]
        # larger kappa keeps fewer edges
        edges = [r.measured["precond_edges"] for r in rows]
        assert edges[-1] <= edges[0]

    def test_reweighted_variant_comparison(self, benchmark):
        """Ablation: plain-subgraph vs unbiased reweighted sampling."""
        g = generators.grid_2d(20, 20)
        sub = low_stretch_subgraph(g.reweighted(1.0 / g.w), lam=2, beta=6.0, seed=2)
        kappa = 16.0

        def run():
            rows = []
            for reweight in (False, True):
                res = incremental_sparsify(
                    g, sub.edge_indices, kappa, seed=3, use_log_factor=False, reweight=reweight
                )
                rows.append(
                    ExperimentRow(
                        "E7",
                        "grid20 " + ("reweighted" if reweight else "plain-subgraph"),
                        params={"kappa": kappa},
                        measured={
                            "precond_edges": res.num_edges,
                            "generalized_condition": _generalized_condition(g, res.graph),
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E7: plain-subgraph vs reweighted sampling", rows)
        plain, reweighted = rows
        assert plain.measured["generalized_condition"] <= reweighted.measured["generalized_condition"] * 1.5
