"""Experiments E9-E11: the application workload suite on the solver.

* E9 — spectral sparsification quality (Spielman–Srivastava via the solver).
* E10 — (1 - eps)-approximate max flow via electrical flows vs exact flow.
* E11 — the solve-many workloads: batched effective-resistance oracle,
  harmonic interpolation, and spectral embedding (setup vs per-query cost).

Machine-readable output
-----------------------
Run this module as a script to emit ``BENCH_applications.json``::

    PYTHONPATH=src python benchmarks/bench_applications.py --json
    PYTHONPATH=src python benchmarks/bench_applications.py --json --scale tiny

The JSON payload records, per workload and per application, the one-time
setup wall-time (factorize + sketch/embedding build) against the per-query
wall-time, so future PRs can diff the amortization story of the whole suite.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

import numpy as np

try:
    from benchmarks.conftest import print_table
except ImportError:  # executed as a script: benchmarks/ itself is on sys.path
    from conftest import print_table

from repro.apps.harmonic import harmonic_interpolation
from repro.apps.maxflow import approx_max_flow, exact_max_flow
from repro.apps.resistance import ResistanceOracle
from repro.apps.sparsification import quadratic_form_distortion, spectral_sparsify
from repro.apps.spectral import spectral_embedding
from repro.core.chain_cache import clear_chain_cache
from repro.core.operator import factorize
from repro.graph import generators
from repro.util.records import ExperimentRow


class TestE9SpectralSparsification:
    def test_sparsifier_quality(self, benchmark):
        g = generators.erdos_renyi_gnm(200, 4000, seed=5)

        def run():
            rows = []
            for eps in (0.75, 0.5):
                res = spectral_sparsify(g, epsilon=eps, seed=0, solver_tol=1e-6)
                distortion = quadratic_form_distortion(g, res.graph, num_probes=20, seed=1)
                rows.append(
                    ExperimentRow(
                        "E9",
                        "er200_dense",
                        params={"eps": eps},
                        measured={
                            "input_edges": g.num_edges,
                            "sparsifier_edges": res.graph.num_edges,
                            "quadratic_distortion": distortion,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E9: spectral sparsifier size and distortion (SS08 via the solver)", rows)
        for r in rows:
            # distortion within a small multiple of the target eps
            assert r.measured["quadratic_distortion"] <= 2.5 * r.params["eps"]


class TestE10ApproximateMaxFlow:
    def test_flow_value_vs_exact(self, benchmark):
        workloads = [
            ("grid10", generators.grid_2d(10, 10)),
            ("geo100", generators.with_random_weights(
                generators.random_geometric_graph(100, 0.2, seed=3), seed=4, spread=5.0,
                distribution="uniform")),
        ]

        def run():
            rows = []
            for name, g in workloads:
                s, t = 0, g.n - 1
                exact = exact_max_flow(g, s, t)
                approx = approx_max_flow(g, s, t, epsilon=0.3, seed=0)
                rows.append(
                    ExperimentRow(
                        "E10",
                        name,
                        params={"m": g.num_edges, "eps": 0.3},
                        measured={
                            "exact_value": exact.value,
                            "approx_value": approx.value,
                            "value_ratio": approx.value / exact.value if exact.value else 1.0,
                            "congestion": approx.congestion,
                            "laplacian_solves": approx.iterations,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E10: electrical-flow approximate max flow vs exact (CKM+10)", rows)
        for r in rows:
            assert r.measured["value_ratio"] >= 0.5
            assert r.measured["value_ratio"] <= 1.05 * (1 + 0.3)
            assert r.measured["congestion"] <= 1.0 + 0.3 + 1e-6


# --------------------------------------------------------------------------- #
# E11: the solve-many workload suite (standalone --json harness)
# --------------------------------------------------------------------------- #
_SCALES = {
    "tiny": dict(grid=10, er_n=60, er_m=150, pairs=32, labels=3, embed_k=2),
    "small": dict(grid=24, er_n=300, er_m=900, pairs=128, labels=4, embed_k=3),
    "medium": dict(grid=48, er_n=1500, er_m=5000, pairs=512, labels=6, embed_k=4),
}


def _resistance_entry(g, *, pairs: int, seed: int = 0) -> Dict:
    """Setup (factorize + JL sketch) vs per-query cost of the resistance oracle."""
    rng = np.random.default_rng(seed)
    queries = rng.integers(0, g.n, size=(pairs, 2))
    t0 = time.time()
    oracle = ResistanceOracle(g, seed=seed, use_cache=False)
    oracle.sketch  # build the batched JL sketch eagerly
    setup_seconds = time.time() - t0
    t0 = time.time()
    sketched = oracle.query(queries)
    sketched_seconds = time.time() - t0
    exact_pairs = queries[: min(8, pairs)]
    t0 = time.time()
    oracle.query(exact_pairs, exact=True)
    exact_seconds = time.time() - t0
    return {
        "application": "resistance_oracle",
        "setup_seconds": setup_seconds,
        "queries": int(pairs),
        "sketched_query_seconds": sketched_seconds,
        "sketched_seconds_per_query": sketched_seconds / pairs,
        "exact_queries": int(exact_pairs.shape[0]),
        "exact_query_seconds": exact_seconds,
        "jl_dimension": oracle.jl_dimension,
        # Edge resistances are always finite; a stable statistic to diff
        # across PRs (unlike random vertex pairs, which mix in 0/inf).
        "mean_edge_resistance": float(np.mean(oracle.edge_resistances())),
    }


def _harmonic_entry(g, *, labels: int, seed: int = 0) -> Dict:
    """Setup (interior factorize) vs per-label-batch cost of harmonic solves."""
    rng = np.random.default_rng(seed)
    nb = max(2, g.n // 20)
    boundary = rng.choice(g.n, size=nb, replace=False)
    onehot = np.zeros((nb, labels))
    onehot[np.arange(nb), rng.integers(0, labels, size=nb)] = 1.0
    clear_chain_cache()
    t0 = time.time()
    first = harmonic_interpolation(g, boundary, onehot, seed=seed)
    setup_and_solve_seconds = time.time() - t0
    t0 = time.time()
    second = harmonic_interpolation(g, boundary, onehot, seed=seed)
    cached_solve_seconds = time.time() - t0
    return {
        "application": "harmonic_interpolation",
        "boundary_size": int(nb),
        "labels": int(labels),
        "first_call_seconds": setup_and_solve_seconds,
        "cached_call_seconds": cached_solve_seconds,
        "iterations": first.iterations,
        "converged": bool(first.converged and second.converged),
    }


def _spectral_entry(g, *, k: int, seed: int = 0) -> Dict:
    """Setup (factorize) vs iteration cost of the spectral embedding."""
    t0 = time.time()
    op = factorize(g, seed=seed)
    setup_seconds = time.time() - t0
    t0 = time.time()
    result = spectral_embedding(g, k, operator=op, seed=seed, tol=1e-8)
    embed_seconds = time.time() - t0
    return {
        "application": "spectral_embedding",
        "k": int(k),
        "setup_seconds": setup_seconds,
        "embed_seconds": embed_seconds,
        "seconds_per_iteration": embed_seconds / max(result.iterations, 1),
        "iterations": result.iterations,
        "converged": bool(result.converged),
        "fiedler_value": float(result.eigenvalues[0]),
    }


def collect_payload(scale: str = "small", seed: int = 0) -> Dict:
    """Per-workload setup vs per-query timings for the application suite."""
    if scale not in _SCALES:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(_SCALES)}")
    p = _SCALES[scale]
    clear_chain_cache()
    workloads = [
        (f"grid_{p['grid']}x{p['grid']}", generators.grid_2d(p["grid"], p["grid"])),
        (
            f"wgrid_{p['grid']}x{p['grid']}",
            generators.weighted_grid_2d(p["grid"], p["grid"], seed=seed, spread=100.0),
        ),
        (f"er_n{p['er_n']}_m{p['er_m']}", generators.erdos_renyi_gnm(p["er_n"], p["er_m"], seed=seed)),
    ]
    out: List[Dict] = []
    for name, g in workloads:
        out.append(
            {
                "workload": name,
                "n": g.n,
                "m": g.num_edges,
                "applications": [
                    _resistance_entry(g, pairs=p["pairs"], seed=seed),
                    _harmonic_entry(g, labels=p["labels"], seed=seed),
                    _spectral_entry(g, k=p["embed_k"], seed=seed),
                ],
            }
        )
    return {
        "experiment": "E11",
        "schema_version": 1,
        "scale": scale,
        "workloads": out,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--json",
        action="store_true",
        help="write the machine-readable benchmark payload",
    )
    parser.add_argument(
        "--out",
        default="BENCH_applications.json",
        help="output path for --json (default: BENCH_applications.json)",
    )
    parser.add_argument(
        "--scale",
        default="small",
        choices=sorted(_SCALES),
        help="workload sizes (default: small)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload/base seed")
    args = parser.parse_args(argv)

    payload = collect_payload(scale=args.scale, seed=args.seed)
    for w in payload["workloads"]:
        apps = {a["application"]: a for a in w["applications"]}
        res, harm, spec = (
            apps["resistance_oracle"],
            apps["harmonic_interpolation"],
            apps["spectral_embedding"],
        )
        print(
            f"{w['workload']}: resistance setup {res['setup_seconds']:.3f}s / "
            f"{res['sketched_seconds_per_query'] * 1e6:.1f}us per sketched query; "
            f"harmonic first {harm['first_call_seconds']:.3f}s vs cached "
            f"{harm['cached_call_seconds']:.3f}s; "
            f"embedding k={spec['k']} in {spec['iterations']} iterations "
            f"({spec['embed_seconds']:.3f}s)"
        )
    if args.json:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
