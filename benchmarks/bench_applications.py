"""Experiments E9-E10: applications of the solver.

* E9 — spectral sparsification quality (Spielman–Srivastava via the solver).
* E10 — (1 - eps)-approximate max flow via electrical flows vs exact flow.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from repro.apps.maxflow import approx_max_flow, exact_max_flow
from repro.apps.sparsification import quadratic_form_distortion, spectral_sparsify
from repro.graph import generators
from repro.util.records import ExperimentRow


class TestE9SpectralSparsification:
    def test_sparsifier_quality(self, benchmark):
        g = generators.erdos_renyi_gnm(200, 4000, seed=5)

        def run():
            rows = []
            for eps in (0.75, 0.5):
                res = spectral_sparsify(g, epsilon=eps, seed=0, solver_tol=1e-6)
                distortion = quadratic_form_distortion(g, res.graph, num_probes=20, seed=1)
                rows.append(
                    ExperimentRow(
                        "E9",
                        "er200_dense",
                        params={"eps": eps},
                        measured={
                            "input_edges": g.num_edges,
                            "sparsifier_edges": res.graph.num_edges,
                            "quadratic_distortion": distortion,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E9: spectral sparsifier size and distortion (SS08 via the solver)", rows)
        for r in rows:
            # distortion within a small multiple of the target eps
            assert r.measured["quadratic_distortion"] <= 2.5 * r.params["eps"]


class TestE10ApproximateMaxFlow:
    def test_flow_value_vs_exact(self, benchmark):
        workloads = [
            ("grid10", generators.grid_2d(10, 10)),
            ("geo100", generators.with_random_weights(
                generators.random_geometric_graph(100, 0.2, seed=3), seed=4, spread=5.0,
                distribution="uniform")),
        ]

        def run():
            rows = []
            for name, g in workloads:
                s, t = 0, g.n - 1
                exact = exact_max_flow(g, s, t)
                approx = approx_max_flow(g, s, t, epsilon=0.3, seed=0)
                rows.append(
                    ExperimentRow(
                        "E10",
                        name,
                        params={"m": g.num_edges, "eps": 0.3},
                        measured={
                            "exact_value": exact.value,
                            "approx_value": approx.value,
                            "value_ratio": approx.value / exact.value if exact.value else 1.0,
                            "congestion": approx.congestion,
                            "laplacian_solves": approx.iterations,
                        },
                    )
                )
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        print_table("E10: electrical-flow approximate max flow vs exact (CKM+10)", rows)
        for r in rows:
            assert r.measured["value_ratio"] >= 0.5
            assert r.measured["value_ratio"] <= 1.05 * (1 + 0.3)
            assert r.measured["congestion"] <= 1.0 + 0.3 + 1e-6
